// Command fdcsim is the trace-driven Flash disk cache simulator: it
// replays a disk trace (from a file produced by tracegen, or generated
// on the fly from the Table 4 catalog) against the full memory
// hierarchy and reports miss rates, latency, power and controller
// activity.
//
// Usage:
//
//	fdcsim -workload dbt2 -scale 0.0625 -requests 200000
//	fdcsim -trace trace.txt -dram 32M -flash 128M
//	fdcsim -workload SPECWeb99 -unified -no-programmable
//	fdcsim -faults "read=2e-3,program=1e-3,erase=1e-3,grown=0.2,seed=7" -scrub 512
//	fdcsim -workload alpha2 -shards 8 -workers 8
//	fdcsim -channels 4 -banks 4 -wbuf 16
//	fdcsim -metrics-out metrics.jsonl -metrics-interval 50ms -trace-events events.jsonl
//	fdcsim -http :8080   (live Prometheus text at /metrics, pprof at /debug/pprof/)
//
// The -shards flag hash-partitions the LBA space across N independent
// shards (each with 1/N of the DRAM and Flash capacity and its own
// derived seed) replayed concurrently by -workers goroutines; the
// report merges the shards. Monolithic (-shards 1, the default) and
// sharded runs are driven through the same Simulator code path and a
// single-shard engine reproduces the monolithic simulation exactly.
//
// Observability (-metrics-out, -trace-events, -http) is timestamped in
// simulated time, so for a fixed (seed, shards) pair the JSONL output
// is byte-identical at any -workers count. -metrics-interval is a span
// of *simulated* time between cumulative snapshots (0 = only the final
// snapshot); -trace-events records management decisions (GC, wear
// rotation, ECC/density reconfiguration, retirement, read retries,
// scrubbing, shard merges) into a bounded ring of -trace-cap events.
//
// The -channels/-banks/-wbuf flags configure the NAND command
// scheduler: block-striped channel/bank parallelism plus a coalescing
// write buffer with delayed writeback. The defaults (1/1/0) model the
// paper's serial device and reproduce its output byte-for-byte; any
// other geometry changes timing and wear only — never hit/miss
// semantics — and adds scheduler counters to the report.
//
// The scheduler's occupancy surface can feed back into the management
// policies: -policy-gc contention-aware scores GC victims by
// reclaimable benefit over predicted bank wait and defers non-forced
// collection under deep foreground backlog, -policy-admit throttle
// (with -wbuf) sheds cold fills and write-backs while the write buffer
// is nearly full, and -scrub-feedback (with -scrub and a parallel
// geometry) batches scrub/refresh migrations into idle bank windows.
// All feedback reads deterministic simulated-time state, so output
// stays byte-identical at any -workers count.
//
// The -faults flag attaches a deterministic fault-injection campaign
// (comma-separated key=value list) to the Flash device; the report
// then includes retry/remap/retirement counters and an end-of-run
// integrity audit. Keys: read (transient flip rate), flipmax, program,
// erase, grown (rates), seed, burst-every, burst-len, burst-factor,
// bad (factory-bad block list, slash-separated).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"

	"flashdc/internal/core"
	"flashdc/internal/engine"
	"flashdc/internal/fault"
	"flashdc/internal/hier"
	"flashdc/internal/nand"
	"flashdc/internal/obs"
	"flashdc/internal/policy"
	"flashdc/internal/power"
	"flashdc/internal/sched"
	"flashdc/internal/server"
	"flashdc/internal/sim"
	"flashdc/internal/tables"
	"flashdc/internal/trace"
	"flashdc/internal/wear"
	"flashdc/internal/workload"
)

// simulator is the full driving-and-reporting surface fdcsim needs,
// satisfied by both the monolithic hier.System and the sharded
// engine.Engine — the CLI below never branches on which it holds.
type simulator interface {
	hier.Simulator
	Latencies() *sim.Histogram
	HasFlash() bool
	FlashStats() core.Stats
	Global() tables.FGST
	DeviceStats() nand.Stats
	FaultStats() fault.Stats
	ValidPages() int64
	Dead() bool
	CheckIntegrity() error
	DiskBusy() sim.Duration
	Power(sim.Duration) power.Breakdown
	Drain()
	Err() error
	Observers() []*obs.Observer
	SchedStats() sched.Stats
}

var (
	_ simulator = (*hier.System)(nil)
	_ simulator = (*engine.Engine)(nil)
)

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return v * mult, nil
}

// parseFaults parses the -faults key=value list into a campaign plan.
func parseFaults(spec string) (*fault.Plan, error) {
	p := &fault.Plan{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad fault setting %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "read":
			p.ReadFlipRate, err = strconv.ParseFloat(v, 64)
		case "flipmax":
			p.ReadFlipMax, err = strconv.Atoi(v)
		case "program":
			p.ProgramFailRate, err = strconv.ParseFloat(v, 64)
		case "erase":
			p.EraseFailRate, err = strconv.ParseFloat(v, 64)
		case "grown":
			p.GrownBadRate, err = strconv.ParseFloat(v, 64)
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "burst-every":
			p.BurstEvery, err = strconv.ParseUint(v, 10, 64)
		case "burst-len":
			p.BurstLen, err = strconv.ParseUint(v, 10, 64)
		case "burst-factor":
			p.BurstFactor, err = strconv.ParseFloat(v, 64)
		case "bad":
			for _, f := range strings.Split(v, "/") {
				b, perr := strconv.Atoi(f)
				if perr != nil {
					return nil, fmt.Errorf("bad factory-bad block %q: %v", f, perr)
				}
				p.FactoryBadBlocks = append(p.FactoryBadBlocks, b)
			}
		default:
			return nil, fmt.Errorf("unknown fault key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bad fault value %q: %v", kv, err)
		}
	}
	return p, nil
}

func main() {
	var (
		workloadName = flag.String("workload", "dbt2", "Table 4 workload name (ignored with -trace)")
		traceFile    = flag.String("trace", "", "replay a text trace file instead of generating")
		traceBinary  = flag.String("trace-binary", "", "replay a binary trace file (tracegen -binary) via a zero-copy mapping")
		batchSize    = flag.Int("batch", trace.DefaultBatch, "requests per replay batch")
		scale        = flag.Float64("scale", 1.0/16, "footprint scale for generated workloads")
		requests     = flag.Int("requests", 200000, "requests to simulate")
		dramSize     = flag.String("dram", "16M", "DRAM primary disk cache size")
		flashSize    = flag.String("flash", "128M", "Flash cache size (0 disables Flash)")
		seed         = flag.Uint64("seed", 1, "random seed")
		unified      = flag.Bool("unified", false, "use the unified (non-split) Flash cache baseline")
		noProg       = flag.Bool("no-programmable", false, "disable the programmable controller (fixed BCH-1)")
		wearAccel    = flag.Float64("wear-accel", 1, "wear acceleration factor")
		faultSpec    = flag.String("faults", "", "fault-injection campaign, e.g. \"read=2e-3,program=1e-3,erase=1e-3,grown=0.2,seed=7\"")
		scrubEvery   = flag.Int("scrub", 0, "background scrub scan interval in host operations (0 disables)")
		shards       = flag.Int("shards", 1, "hash-partition the LBA space across N independent shards")
		workers      = flag.Int("workers", 0, "concurrent shard replay goroutines (0 = one per shard)")
		channels     = flag.Int("channels", 1, "NAND channels (blocks striped block%channels; 1 = the paper's serial device)")
		banks        = flag.Int("banks", 1, "NAND banks per channel (erases occupy only their bank)")
		wbufPages    = flag.Int("wbuf", 0, "coalescing write-buffer capacity in pages (0 disables)")
		scrubFeed    = flag.Bool("scrub-feedback", false, "defer scrub/refresh migrations off busy banks into idle windows (needs -scrub and -channels/-banks > 1)")

		policyEvict  = flag.String("policy-evict", "", "flash eviction policy (default "+policy.DefaultName(policy.KindEvict)+"; see -list-policies)")
		policyAdmit  = flag.String("policy-admit", "", "flash admission policy (default "+policy.DefaultName(policy.KindAdmit)+"; see -list-policies)")
		policyGC     = flag.String("policy-gc", "", "GC victim-selection policy (default "+policy.DefaultName(policy.KindGC)+"; see -list-policies)")
		listPolicies = flag.Bool("list-policies", false, "list the registered cache policies and exit")

		retentionAccel = flag.Float64("retention-accel", 0, "retention-loss acceleration factor over the 10-year spec dwell (0 disables)")
		disturbReads   = flag.Float64("disturb-reads", 0, "sibling reads per correctable read-disturb bit error (0 disables)")
		refreshThresh  = flag.Float64("refresh-threshold", 0, "fraction of ECC capability at which the scrubber refreshes a page (0 = 1.0)")
		checkpointOut  = flag.String("checkpoint-out", "", "write a resumable campaign checkpoint to this file at end of run")
		checkpointIn   = flag.String("checkpoint-in", "", "resume a campaign from this checkpoint (-requests adds to it)")

		metricsOut  = flag.String("metrics-out", "", "write cumulative metric snapshots as JSONL to this file")
		metricsIvl  = flag.Duration("metrics-interval", 0, "simulated time between snapshots (0 = final snapshot only)")
		traceEvents = flag.String("trace-events", "", "write decision events as JSONL to this file")
		traceCap    = flag.Int("trace-cap", 0, fmt.Sprintf("per-shard event ring-buffer capacity (0 = %d)", obs.DefaultTraceCapacity))
		httpAddr    = flag.String("http", "", "serve live Prometheus text at /metrics and pprof at /debug/pprof/ on this address")
	)
	flag.Parse()

	if *listPolicies {
		for _, kind := range policy.Kinds() {
			names := policy.Names(kind)
			fmt.Printf("%-6s %s (default %s)\n", kind, strings.Join(names, ", "), policy.DefaultName(kind))
		}
		return
	}

	// Validate the whole flag set up front: every rejection below is a
	// usage error reported before any simulation state is built, so a
	// mistyped multi-hour campaign fails in milliseconds.
	dram, err := parseSize(*dramSize)
	if err != nil {
		usageErr("-dram: %v", err)
	}
	flash, err := parseSize(*flashSize)
	if err != nil {
		usageErr("-flash: %v", err)
	}
	switch {
	case *requests < 0:
		usageErr("-requests %d is negative", *requests)
	case *scrubEvery < 0:
		usageErr("-scrub %d: the scrub interval cannot be negative", *scrubEvery)
	case *shards < 1:
		usageErr("-shards %d: need at least one shard", *shards)
	case *workers < 0:
		usageErr("-workers %d is negative", *workers)
	case *wearAccel < 0:
		usageErr("-wear-accel %g is negative", *wearAccel)
	case *retentionAccel < 0:
		usageErr("-retention-accel %g is negative", *retentionAccel)
	case *disturbReads < 0:
		usageErr("-disturb-reads %g is negative", *disturbReads)
	case *refreshThresh < 0 || *refreshThresh > 1:
		usageErr("-refresh-threshold %g outside (0,1] (0 means 1.0)", *refreshThresh)
	case *batchSize < 1:
		usageErr("-batch %d: need at least one request per batch", *batchSize)
	case *channels < 1:
		usageErr("-channels %d: need at least one channel", *channels)
	case *banks < 1:
		usageErr("-banks %d: need at least one bank per channel", *banks)
	case *wbufPages < 0:
		usageErr("-wbuf %d is negative", *wbufPages)
	case *traceFile != "" && *traceBinary != "":
		usageErr("-trace and -trace-binary are mutually exclusive")
	case *traceFile == "" && *traceBinary == "" && !(*scale > 0):
		usageErr("-scale %g: generated workloads need a positive footprint scale", *scale)
	case flash == 0 && (*retentionAccel > 0 || *disturbReads > 0):
		usageErr("-retention-accel/-disturb-reads model Flash reliability; -flash 0 builds no Flash tier")
	case (*checkpointIn != "" || *checkpointOut != "") && (*traceFile != "" || *traceBinary != ""):
		usageErr("-checkpoint-in/-checkpoint-out support generated workloads only, not -trace/-trace-binary " +
			"(a trace file's stream position cannot be replayed deterministically)")
	}
	schedCfg := sched.Config{Channels: *channels, Banks: *banks, WriteBufPages: *wbufPages}
	switch {
	case flash == 0 && schedCfg.Active():
		usageErr("-channels/-banks/-wbuf configure the Flash NAND scheduler; -flash 0 builds no Flash tier")
	case (*checkpointIn != "" || *checkpointOut != "") && schedCfg.Active():
		usageErr("-checkpoint-in/-checkpoint-out support the default serial device only " +
			"(in-flight channel/bank/write-buffer state is not checkpointable)")
	case *scrubFeed && !schedCfg.Active():
		usageErr("-scrub-feedback consults the NAND scheduler's occupancy; configure a parallel geometry (-channels/-banks/-wbuf)")
	case *scrubFeed && *scrubEvery <= 0:
		usageErr("-scrub-feedback defers scrub migrations; enable the scrubber with -scrub first")
	}
	if *faultSpec != "" {
		plan, err := parseFaults(*faultSpec)
		if err != nil {
			usageErr("-faults: %v", err)
		}
		if !plan.Active() {
			usageErr("-faults %q provides no fault rates; set at least one of read/program/erase/grown/bad", *faultSpec)
		}
	}
	pset := policy.Set{Evict: *policyEvict, Admit: *policyAdmit, GC: *policyGC}
	if err := pset.Validate(); err != nil {
		usageErr("%v", err)
	}
	if flash == 0 && !pset.IsDefault() {
		usageErr("-policy-evict/-policy-admit/-policy-gc select Flash cache policies; -flash 0 builds no Flash tier")
	}
	if pset.Normalized().Admit == policy.AdmitThrottle && *wbufPages == 0 {
		usageErr("-policy-admit throttle reads the write-buffer fill; configure one with -wbuf")
	}

	fc := core.DefaultConfig(flash)
	fc.Split = !*unified
	fc.Programmable = !*noProg
	fc.WearAcceleration = *wearAccel
	fc.ScrubEvery = *scrubEvery
	fc.Retention = wear.RetentionParams{Accel: *retentionAccel}
	fc.Disturb = wear.DisturbParams{ReadsPerBit: *disturbReads}
	fc.RefreshThreshold = *refreshThresh
	fc.Policies = pset
	fc.Sched = schedCfg
	fc.ScrubFeedback = *scrubFeed
	if *faultSpec != "" {
		plan, err := parseFaults(*faultSpec)
		die(err)
		fc.Faults = plan
	}

	obsOpts := obs.Options{
		Metrics:         *metricsOut != "" || *httpAddr != "",
		MetricsInterval: sim.Duration(*metricsIvl),
		Trace:           *traceEvents != "",
		TraceCapacity:   *traceCap,
	}
	if *httpAddr != "" && obsOpts.MetricsInterval == 0 {
		// The live endpoint reads atomically published snapshots, so it
		// would serve nothing until the end of the run without a
		// snapshot cadence.
		obsOpts.MetricsInterval = 100 * sim.Millisecond
	}

	cfg := hier.Config{DRAMBytes: dram, FlashBytes: flash, Seed: *seed}
	if flash > 0 {
		cfg.Flash = fc
	}

	// fingerprint names the configuration for checkpoint compatibility:
	// a checkpoint resumes only under the exact flag set that produced
	// it (minus -requests, which extends the campaign).
	fingerprint := fmt.Sprintf(
		"workload=%s scale=%g dram=%d flash=%d seed=%d unified=%v programmable=%v "+
			"wear-accel=%g faults=%q scrub=%d shards=%d "+
			"retention-accel=%g disturb-reads=%g refresh-threshold=%g",
		*workloadName, *scale, dram, flash, *seed, *unified, !*noProg,
		*wearAccel, *faultSpec, *scrubEvery, *shards,
		*retentionAccel, *disturbReads, *refreshThresh)
	if !pset.IsDefault() {
		// Appended only for non-default selections, so checkpoints taken
		// before the policy framework existed keep resuming.
		n := pset.Normalized()
		fingerprint += fmt.Sprintf(" policy-evict=%s policy-admit=%s policy-gc=%s",
			n.Evict, n.Admit, n.GC)
	}

	// Build the simulator. Both arms yield the same driving surface;
	// everything below this block is shared. Checkpointing always
	// routes through the engine — a single-shard engine reproduces the
	// monolithic simulation bit-for-bit, and the checkpoint format is
	// the engine's.
	var sys simulator
	useEngine := *shards > 1 || *checkpointIn != "" || *checkpointOut != ""
	if useEngine {
		eng, err := engine.New(engine.Config{Shards: *shards, Workers: *workers, Hier: cfg, Obs: obsOpts})
		die(err)
		sys = eng
	} else {
		if obsOpts != (obs.Options{}) {
			o := obs.New(obsOpts)
			cfg.Observer = o
		}
		sys = hier.New(cfg)
	}

	// Resume: restore every shard's state and remember how much of the
	// global stream the checkpointed run already simulated.
	prevConsumed := 0
	if *checkpointIn != "" {
		eng := sys.(*engine.Engine)
		f, err := os.Open(*checkpointIn)
		die(err)
		ck, err := engine.ReadCheckpoint(f)
		die(err)
		die(f.Close())
		if ck.Fingerprint != fingerprint {
			die(fmt.Errorf("checkpoint configuration mismatch:\n  checkpoint: %s\n  this run:   %s",
				ck.Fingerprint, fingerprint))
		}
		if ck.Shards != *shards {
			die(fmt.Errorf("checkpoint has %d shards, -shards says %d", ck.Shards, *shards))
		}
		die(eng.Restore(ck))
		prevConsumed = int(ck.Consumed)
	}
	totalRequests := prevConsumed + *requests

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(sys.Observers))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "fdcsim: http:", err)
			}
		}()
		fmt.Printf("serving metrics:   http://%s/metrics (pprof at /debug/pprof/)\n", *httpAddr)
	}

	stats := trace.NewStats()
	// runSource drives sys at the -batch granularity. After the run the
	// source's sticky stream error (a torn trace file, a bad binary
	// record) is fatal like any other input error.
	runSource := func(src trace.Source, n int) {
		buf := make([]trace.Request, *batchSize)
		for consumed := 0; consumed < n; {
			chunk := len(buf)
			if rem := n - consumed; rem < chunk {
				chunk = rem
			}
			k := src.Next(buf[:chunk])
			if k == 0 {
				break
			}
			sys.RunBatch(buf[:k])
			consumed += k
		}
		die(trace.SourceErr(src))
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		die(err)
		onExit(f.Close)
		runSource(trace.NewCountingSource(trace.NewStreamSource(trace.NewReader(f)), stats), *requests)
	} else if *traceBinary != "" {
		m, err := trace.MapFile(*traceBinary)
		die(err)
		// Registered rather than deferred: die/usageErr and the explicit
		// os.Exit paths below bypass defers, which used to leak the
		// mapping on every early exit.
		onExit(m.Close)
		runSource(trace.NewCountingSource(m, stats), *requests)
	} else if eng, ok := sys.(*engine.Engine); ok {
		// Sharded generated workloads use the per-shard source mode:
		// each shard draws its slice of the global stream directly,
		// overlapping stream production with other shards' simulation.
		// A source/shard mismatch is reported like any other fatal
		// configuration error.
		sources := make([]engine.Source, eng.Shards())
		for i := range sources {
			g, err := workload.New(*workloadName, *scale, *seed)
			die(err)
			p := workload.NewPartitioned(g, i, eng.Shards())
			// On resume, fast-forward past the prefix the checkpointed
			// run already simulated: the generator is deterministic, so
			// draining it re-synchronises the stream position exactly.
			for {
				if _, ok := p.NextUntil(prevConsumed); !ok {
					break
				}
			}
			sources[i] = p
		}
		die(eng.RunSources(sources, totalRequests))
		// The sources consumed the stream shard-locally; replay a
		// fresh generator to report the global trace footprint (the
		// full campaign's on resume, so reports stay cumulative).
		g, err := workload.New(*workloadName, *scale, *seed)
		die(err)
		for i := 0; i < totalRequests; i++ {
			stats.Add(g.Next())
		}
	} else {
		g, err := workload.New(*workloadName, *scale, *seed)
		die(err)
		runSource(trace.NewCountingSource(workload.AsSource(g), stats), *requests)
	}
	// Checkpoint before Drain: the unbroken run never drains mid-way,
	// so a resumable snapshot must capture the pre-drain state for the
	// continuation to be bit-identical. (Progress notes go to stderr —
	// stdout stays byte-comparable across segmented and unbroken runs.)
	if *checkpointOut != "" {
		eng := sys.(*engine.Engine)
		ck, err := eng.Checkpoint(fingerprint, int64(totalRequests))
		die(err)
		f, err := os.Create(*checkpointOut)
		die(err)
		die(engine.WriteCheckpoint(f, ck))
		die(f.Close())
		fmt.Fprintf(os.Stderr, "fdcsim: checkpoint after %d requests -> %s\n", totalRequests, *checkpointOut)
	}
	sys.Drain()
	report := sys.Observe()

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		die(err)
		die(obs.WriteSnapshotsJSONL(f, report.Snapshots))
		die(f.Close())
		fmt.Printf("metrics:           %d snapshots -> %s\n", len(report.Snapshots), *metricsOut)
	}
	if *traceEvents != "" {
		f, err := os.Create(*traceEvents)
		die(err)
		die(obs.WriteEventsJSONL(f, report.Events))
		die(f.Close())
		fmt.Printf("trace events:      %d -> %s (%d dropped)\n",
			len(report.Events), *traceEvents, report.DroppedEvents)
	}

	if eng, ok := sys.(*engine.Engine); ok && eng.Shards() > 1 {
		// A single-shard engine (the checkpoint path's monolithic form)
		// stays silent so its report matches hier.System output.
		fmt.Printf("shards:            %d (%d workers)\n", eng.Shards(), eng.Workers())
	}
	st := sys.Stats()
	fmt.Printf("requests:          %d (%d read pages, %d write pages)\n",
		st.Requests, st.ReadPages, st.WritePages)
	fmt.Printf("trace footprint:   %d pages (%.1f MB), %.1f%% writes\n",
		stats.UniquePages(), float64(stats.WorkingSetBytes())/float64(1<<20),
		100*stats.WriteFraction())
	fmt.Printf("PDC hits:          %d (%.2f%% of pages)\n",
		st.PDCHits, pct(st.PDCHits, st.ReadPages+st.WritePages))
	fmt.Printf("flash hits:        %d\n", st.FlashHits)
	fmt.Printf("disk reads:        %d\n", st.DiskReads)
	fmt.Printf("avg latency:       %v\n", st.AvgLatency())
	fmt.Printf("latency profile:   %v\n", sys.Latencies())
	fmt.Printf("request latency:   p99=%v p999=%v\n",
		sys.Latencies().Quantile(0.99), sys.Latencies().Quantile(0.999))
	srv := server.Default()
	fmt.Printf("est. bandwidth:    %.1f MB/s (%.0f req/s)\n",
		srv.Bandwidth(st.AvgLatency())/(1<<20), srv.Throughput(st.AvgLatency()))

	if sys.HasFlash() {
		cs := sys.FlashStats()
		gl := sys.Global()
		if !pset.IsDefault() {
			// Printed only under non-default policies: the default report
			// stays byte-identical to the pre-framework output.
			fmt.Printf("policies:          %s\n", pset)
			fmt.Printf("admission:         %d fills rejected, %d write-arounds\n",
				cs.AdmitRejects, cs.WriteArounds)
		}
		fmt.Printf("flash miss rate:   %.4f\n", cs.MissRate())
		fmt.Printf("flash GC:          %d runs, %d relocations, %v background time\n",
			cs.GCRuns, cs.GCRelocations, cs.GCTime)
		fmt.Printf("flash evictions:   %d (%d pages flushed to disk)\n",
			cs.Evictions, cs.FlushedPages)
		fmt.Printf("wear swaps:        %d, promotions: %d\n", cs.WearSwaps, cs.Promotions)
		fmt.Printf("reconfig events:   %d ECC, %d density\n",
			gl.ECCReconfigs, gl.DensityReconfigs)
		fmt.Printf("retired blocks:    %d (dead=%v)\n", cs.RetiredBlocks, sys.Dead())
		ds := sys.DeviceStats()
		fmt.Printf("device ops:        %d reads, %d programs, %d erases\n",
			ds.Reads, ds.Programs, ds.Erases)
		if schedCfg.Active() {
			// Printed only under a non-default geometry: the default
			// serial-device report stays byte-identical to the pre-scheduler
			// output.
			ss := sys.SchedStats()
			fmt.Printf("nand scheduler:    %d channels x %d banks: %d read, %d program, %d erase cmds\n",
				*channels, *banks, ss.ReadCmds, ss.ProgramCmds, ss.EraseCmds)
			fmt.Printf("sched contention:  %d channel waits (%v), %d bank conflicts (%v)\n",
				ss.ChanWaits, ss.ChanWaitTime, ss.BankConflicts, ss.BankWaitTime)
			if *wbufPages > 0 {
				fmt.Printf("write buffer:      %d pages: %d buffered, %d coalesced, %d flushes (%d forced)\n",
					*wbufPages, ss.BufferedWrites, ss.CoalescedWrites, ss.Flushes, ss.ForcedFlushes)
			}
		}
		n := pset.Normalized()
		if n.GC == policy.GCContentionAware || n.Admit == policy.AdmitThrottle || *scrubFeed {
			// Printed only with a feedback path configured: feedback-off
			// reports stay byte-identical to the pre-feedback output.
			fmt.Printf("sched feedback:    %d GC deferrals, %d throttle engagements, %d scrub deferrals (%d idle windows)\n",
				cs.GCDeferred, cs.AdmitThrottleFlips, cs.ScrubDeferred, cs.ScrubWindows)
		}
		if *faultSpec != "" || *scrubEvery > 0 {
			fs := sys.FaultStats()
			fmt.Printf("faults injected:   %d read flips over %d reads, %d program fails, %d erase fails, %d grown bad\n",
				fs.ReadFlips, fs.ReadInjections, fs.ProgramFails, fs.EraseFails, fs.GrownBad)
			fmt.Printf("fault recovery:    %d retries (%d recovered), %d remaps, %d program fails, %d erase fails\n",
				cs.ReadRetries, cs.RetryRecoveries, cs.Remaps, cs.ProgramFailures, cs.EraseFailures)
			fmt.Printf("scrubber:          %d pages scanned, %d migrated, %v background time\n",
				cs.ScrubScans, cs.ScrubMigrations, cs.ScrubTime)
			if err := sys.CheckIntegrity(); err != nil {
				fmt.Printf("integrity:         FAILED: %v\n", err)
				exit(1)
			}
			fmt.Printf("integrity:         OK (%d cached pages verified)\n", sys.ValidPages())
		}
		if *retentionAccel > 0 || *disturbReads > 0 {
			fmt.Printf("refresh policy:    %d retention scans, %d refresh rewrites, %d disturb resets\n",
				cs.RetentionScans, cs.RefreshRewrites, cs.DisturbResets)
		}
	}
	elapsed := srv.Elapsed(st.Requests, st.AvgLatency())
	if db := sys.DiskBusy(); db > elapsed {
		elapsed = db
	}
	if elapsed > 0 {
		fmt.Printf("power:             %v\n", sys.Power(elapsed))
	}
	if err := sys.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "fdcsim: degraded service:", err)
		exit(1)
	}
	die(runExitFns())
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// exitFns holds cleanup work — closing the mapped binary trace or the
// text trace file — that must run on every exit path. die, usageErr
// and exit bypass defers (os.Exit), which used to leak the -trace-binary
// mapping on early exits; registered cleanups run regardless.
var exitFns []func() error

func onExit(fn func() error) { exitFns = append(exitFns, fn) }

// runExitFns runs the registered cleanups newest-first, reporting the
// first failure (which matters on an otherwise clean exit: a close
// error can mean the mapping was torn down mid-replay).
func runExitFns() error {
	var first error
	for i := len(exitFns) - 1; i >= 0; i-- {
		if err := exitFns[i](); err != nil && first == nil {
			first = err
		}
	}
	exitFns = nil
	return first
}

// exit terminates with code after running the registered cleanups.
func exit(code int) {
	runExitFns()
	os.Exit(code)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdcsim:", err)
		exit(1)
	}
}

// usageErr reports a flag-validation failure as a usage error (exit 2,
// the flag package's convention) before any simulation state exists.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fdcsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run with -h for usage")
	exit(2)
}
