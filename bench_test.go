package flashdc

// One benchmark per paper table and figure: each regenerates the
// artifact at the quick scale, so `go test -bench=.` exercises the
// whole evaluation pipeline and reports how long each reproduction
// takes. BenchmarkCache* micro-benchmarks time the hot paths of the
// cache itself.

import (
	"fmt"
	"testing"

	"flashdc/internal/experiments"
	"flashdc/internal/sim"
	"flashdc/internal/trace"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := experiments.QuickOptions()
	for i := 0; i < b.N; i++ {
		tab := experiments.MustRun(id, o)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig1b(b *testing.B)  { benchExperiment(b, "fig1b") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }

func BenchmarkAblateSplit(b *testing.B) { benchExperiment(b, "ablate-split") }
func BenchmarkAblateWear(b *testing.B)  { benchExperiment(b, "ablate-wear") }
func BenchmarkAblateHot(b *testing.B)   { benchExperiment(b, "ablate-hot") }
func BenchmarkAblateGC(b *testing.B)    { benchExperiment(b, "ablate-gc") }

// BenchmarkCacheReadHit times the cache hit path (FCHT lookup, device
// read, ECC latency accounting, LRU update).
func BenchmarkCacheReadHit(b *testing.B) {
	c := NewCache(DefaultCacheConfig(16 << 20))
	for i := int64(0); i < 1000; i++ {
		c.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Read(int64(i % 1000)).Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkCacheWrite times the out-of-place write path including
// background GC amortised over a churning working set.
func BenchmarkCacheWrite(b *testing.B) {
	c := NewCache(DefaultCacheConfig(16 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(int64(i % 4000))
	}
}

// BenchmarkCacheMixed times a 70/30 read/write mix over a working set
// twice the cache size (steady-state miss handling included).
func BenchmarkCacheMixed(b *testing.B) {
	c := NewCache(DefaultCacheConfig(16 << 20))
	rng := sim.NewRNG(1)
	wss := 2 * int(c.CapacityPages())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := int64(rng.Intn(wss))
		if rng.Bool(0.3) {
			c.Write(lba)
		} else if !c.Read(lba).Hit {
			c.Insert(lba)
		}
	}
}

// BenchmarkHierarchyRequest times a full request through DRAM, Flash
// and disk models with a dbt2-like access stream.
func BenchmarkHierarchyRequest(b *testing.B) {
	s := NewSystem(SystemConfig{DRAMBytes: 1 << 20, FlashBytes: 16 << 20, Seed: 1})
	g, err := NewWorkload("dbt2", 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Handle(g.Next())
	}
}

func benchEngineReplay(b *testing.B, o ObsOptions) {
	b.Helper()
	const requests = 200000
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := NewEngine(EngineConfig{
					Shards: shards,
					Hier:   SystemConfig{DRAMBytes: 8 << 20, FlashBytes: 64 << 20, Seed: 3},
					Obs:    o,
				})
				if err != nil {
					b.Fatal(err)
				}
				sources := make([]EngineSource, shards)
				for s := range sources {
					g, err := NewWorkload("alpha2", 1.0/16, 3)
					if err != nil {
						b.Fatal(err)
					}
					sources[s] = NewPartitionedWorkload(g, s, shards)
				}
				if err := eng.RunSources(sources, requests); err != nil {
					b.Fatal(err)
				}
				if got := eng.Stats().Requests; got != requests {
					b.Fatalf("replayed %d requests, want %d", got, requests)
				}
				if o != (ObsOptions{}) {
					if rep := eng.Observe(); len(rep.Snapshots) == 0 {
						b.Fatal("observed run produced no snapshots")
					}
				}
			}
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkEngineReplay times a 200k-request Zipf replay through the
// sharded engine at 1/4/8 shards. Per-shard stream production and
// simulation both parallelise, so on a multi-core host the sharded
// runs show the engine's wall-clock scaling; the merged result is
// identical across shard counts' worker schedules. Observability is
// disabled — the comparison against BenchmarkEngineReplayObserved
// measures the nil-observer fast path's cost.
func BenchmarkEngineReplay(b *testing.B) { benchEngineReplay(b, ObsOptions{}) }

// BenchmarkEngineReplayObserved is BenchmarkEngineReplay with the full
// observability stack on (metrics registry, 10ms snapshot cadence,
// decision tracing) including the end-of-run merge; its delta over
// BenchmarkEngineReplay is the cost of observing.
func BenchmarkEngineReplayObserved(b *testing.B) {
	benchEngineReplay(b, ObsOptions{
		Metrics:         true,
		MetricsInterval: 10 * Millisecond,
		Trace:           true,
	})
}

// BenchmarkEngineReplayBatched times the same 200k-request Zipf replay
// as BenchmarkEngineReplay, but driven through the batch pipeline from
// a pre-encoded in-memory binary trace: the stream is generated and
// packed once outside the timed loop, then each iteration maps it
// zero-copy and replays it with Engine.RunSource. The delta against
// BenchmarkEngineReplay is the batch pipeline's whole advantage —
// no per-shard duplicate stream generation, no per-request closure
// calls, batch-resolved metadata lookups.
func BenchmarkEngineReplayBatched(b *testing.B) {
	const requests = 200000
	g, err := NewWorkload("alpha2", 1.0/16, 3)
	if err != nil {
		b.Fatal(err)
	}
	buf := trace.AppendBinaryHeader(nil)
	for i := 0; i < requests; i++ {
		buf = trace.AppendBinary(buf, g.Next())
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := NewEngine(EngineConfig{
					Shards: shards,
					Hier:   SystemConfig{DRAMBytes: 8 << 20, FlashBytes: 64 << 20, Seed: 3},
				})
				if err != nil {
					b.Fatal(err)
				}
				src, err := trace.MapBytes(buf)
				if err != nil {
					b.Fatal(err)
				}
				if n := eng.RunSource(src, requests); n != requests {
					b.Fatalf("replayed %d requests, want %d", n, requests)
				}
				if got := eng.Stats().Requests; got != requests {
					b.Fatalf("stats count %d requests, want %d", got, requests)
				}
			}
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkEngineReplayChannels times the 200k-request Zipf replay at
// 4 shards across NAND scheduler geometries: the serial default, pure
// channel striping, and channels+banks+write-buffer. The scheduler
// sits on the replay hot path (every device command books channel and
// bank timelines), so this pins its overhead — and the serial row must
// track BenchmarkEngineReplay/shards=4, since the default geometry is
// the same simulation through the same code path.
func BenchmarkEngineReplayChannels(b *testing.B) {
	const requests = 200000
	const shards = 4
	for _, geo := range []struct {
		name     string
		channels int
		banks    int
		wbuf     int
	}{
		{"serial", 1, 1, 0},
		{"channels=4", 4, 1, 0},
		{"channels=8-banks=4-wbuf=16", 8, 4, 16},
	} {
		b.Run(geo.name, func(b *testing.B) {
			fc := DefaultCacheConfig(64 << 20)
			fc.Sched = SchedConfig{Channels: geo.channels, Banks: geo.banks, WriteBufPages: geo.wbuf}
			for i := 0; i < b.N; i++ {
				eng, err := NewEngine(EngineConfig{
					Shards: shards,
					Hier:   SystemConfig{DRAMBytes: 8 << 20, FlashBytes: 64 << 20, Seed: 3, Flash: fc},
				})
				if err != nil {
					b.Fatal(err)
				}
				sources := make([]EngineSource, shards)
				for s := range sources {
					g, err := NewWorkload("alpha2", 1.0/16, 3)
					if err != nil {
						b.Fatal(err)
					}
					sources[s] = NewPartitionedWorkload(g, s, shards)
				}
				if err := eng.RunSources(sources, requests); err != nil {
					b.Fatal(err)
				}
				if got := eng.Stats().Requests; got != requests {
					b.Fatalf("replayed %d requests, want %d", got, requests)
				}
			}
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkWorkloadNext times trace generation alone.
func BenchmarkWorkloadNext(b *testing.B) {
	for _, name := range []string{"uniform", "alpha2", "exp1", "dbt2"} {
		b.Run(name, func(b *testing.B) {
			g, err := NewWorkload(name, 0.01, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next()
			}
		})
	}
}
