// Package flashdc is a full reproduction of "Improving NAND Flash
// Based Disk Caches" (Kgil, Roberts, Mudge — ISCA 2008): a NAND Flash
// secondary disk cache with a split read/write organisation,
// wear-level aware replacement, and a programmable Flash memory
// controller offering per-page variable-strength BCH ECC and SLC/MLC
// density control.
//
// # Architecture
//
// The library is layered bottom-up (each layer is independently usable
// and tested):
//
//   - internal/gf, internal/bch, internal/crcx: GF(2^m) arithmetic, a
//     real binary BCH codec (Berlekamp–Massey + Chien search), and a
//     parallel CRC-32 engine — the controller's error machinery.
//   - internal/ecc: the variable-strength page codec (CRC32 + BCH in
//     the 64-byte spare area) plus the 100MHz hardware accelerator
//     latency model.
//   - internal/wear: the exponential cell wear-out model (Figure 6(b)).
//   - internal/nand: the dual-mode SLC/MLC NAND device (2KB pages, 64
//     slots per block, Table 3 timing, wear-driven bit errors).
//   - internal/core: the paper's contribution — the Flash disk cache
//     with FCHT/FPST/FBST/FGST management tables, split regions,
//     background GC, wear levelling and controller reconfiguration.
//   - internal/dram, internal/disk, internal/hier, internal/server:
//     the rest of the platform — DRAM primary disk cache, hard disk,
//     the assembled hierarchy, and the closed-loop server throughput
//     model.
//   - internal/workload, internal/trace: Table 4 workload generators
//     and the trace format.
//   - internal/experiments: one runner per paper table and figure.
//
// This package re-exports the pieces a downstream user needs, so that
// `import "flashdc"` is enough for common use. See the examples/
// directory for runnable programs and cmd/fdcbench for the experiment
// harness.
package flashdc

import (
	"io"

	"flashdc/internal/array"
	"flashdc/internal/core"
	"flashdc/internal/engine"
	"flashdc/internal/experiments"
	"flashdc/internal/fault"
	"flashdc/internal/ftl"
	"flashdc/internal/hier"
	"flashdc/internal/obs"
	"flashdc/internal/sched"
	"flashdc/internal/server"
	"flashdc/internal/sim"
	"flashdc/internal/trace"
	"flashdc/internal/wear"
	"flashdc/internal/workload"
)

// Core cache API (the paper's contribution).
type (
	// CacheConfig parameterises the Flash disk cache.
	CacheConfig = core.Config
	// Cache is the Flash-based secondary disk cache.
	Cache = core.Cache
	// CacheStats aggregates cache activity.
	CacheStats = core.Stats
	// Backing receives dirty write-backs from the cache.
	Backing = core.Backing
	// SchedConfig sizes the NAND command scheduler
	// (CacheConfig.Sched): channel/bank parallelism and the
	// coalescing write buffer. The zero value is the paper's serial
	// device.
	SchedConfig = sched.Config
	// SchedStats counts NAND command-scheduler activity (contention
	// waits, bank conflicts, write-buffer coalescing).
	SchedStats = sched.Stats
)

// DefaultCacheConfig returns the paper's configuration (split 90/10,
// programmable controller, MLC base, BCH-1 base strength) for the
// given Flash capacity in bytes.
func DefaultCacheConfig(flashBytes int64) CacheConfig {
	return core.DefaultConfig(flashBytes)
}

// NewCache builds a Flash disk cache.
func NewCache(cfg CacheConfig) *Cache { return core.New(cfg) }

// Hierarchy API (DRAM primary disk cache + Flash + disk, Figure 2).
type (
	// SystemConfig sizes a full memory hierarchy.
	SystemConfig = hier.Config
	// System is an assembled hierarchy driven by requests.
	System = hier.System
	// SystemStats aggregates hierarchy behaviour.
	SystemStats = hier.Stats
)

// NewSystem assembles a hierarchy; FlashBytes == 0 builds the
// DRAM-only baseline.
func NewSystem(cfg SystemConfig) *System { return hier.New(cfg) }

// Tier composition: the hierarchy is a chain of Tier values (DRAM,
// optionally Flash, disk) rather than hard-wired fields.
type (
	// Tier is one level of the storage hierarchy.
	Tier = hier.Tier
	// TierStats counts one tier's activity in tier-agnostic terms.
	TierStats = hier.TierStats
)

// Degraded-service conditions System.Handle reports alongside the
// simulated latency; test with errors.Is.
var (
	// ErrFlashBypassed marks a run whose Flash tier failed to restore
	// from a metadata image and was left out of the hierarchy.
	ErrFlashBypassed = hier.ErrFlashBypassed
	// ErrFlashDead marks a run whose Flash cache wore out entirely.
	ErrFlashDead = hier.ErrFlashDead
)

// Sharded simulation engine: hash-partitions the LBA space across
// independent per-shard hierarchies replayed by a worker pool, with
// bit-for-bit reproducible merged results.
type (
	// EngineConfig parameterises the sharded engine.
	EngineConfig = engine.Config
	// Engine replays request streams across shards and merges results.
	Engine = engine.Engine
	// EngineSource yields one shard's slice of a global stream.
	EngineSource = engine.Source
	// PartitionedWorkload filters a Workload down to one shard's pages.
	PartitionedWorkload = workload.Partitioned
)

// NewEngine builds a sharded engine; Shards=1 reproduces the
// monolithic simulation exactly.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// NewPartitionedWorkload wraps g as shard's deterministic slice of the
// global request stream (see Engine.RunSources).
func NewPartitionedWorkload(g Workload, shard, shards int) *PartitionedWorkload {
	return workload.NewPartitioned(g, shard, shards)
}

// ShardOf maps a page to its owning shard under the canonical LBA
// hash partition.
func ShardOf(lba int64, shards int) int { return engine.ShardOf(lba, shards) }

// Workload and trace API (Table 4).
type (
	// Request is one disk access (2KB pages).
	Request = trace.Request
	// Workload is an endless request generator.
	Workload = workload.Generator
	// WorkloadSpec describes a catalog entry.
	WorkloadSpec = workload.Spec
)

// Request directions.
const (
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Workloads lists the Table 4 catalog.
func Workloads() []WorkloadSpec { return workload.Catalog }

// Batched request pipeline: TraceSource is the bulk driving surface
// consumed by System.RunSource and Engine.RunSource (System.RunBatch
// and Engine.RunBatch take in-memory slices directly). The deprecated
// per-request closure shims (System.Run, Engine.RunStream) are gone;
// wrap a closure with FuncSource instead.
type (
	// TraceSource yields a request stream in bulk: Next fills the
	// buffer from the front and returns how many requests were written
	// (0 = exhausted).
	TraceSource = trace.Source
	// SliceTraceSource replays an in-memory request slice.
	SliceTraceSource = trace.SliceSource
	// MappedTrace is a zero-copy source over a binary trace file
	// (tracegen -binary); Close releases the mapping.
	MappedTrace = trace.MapSource
)

// DefaultBatch is the bulk-fill granularity drivers default to.
const DefaultBatch = trace.DefaultBatch

// NewSliceSource wraps an in-memory request slice (not copied) as a
// replayable TraceSource.
func NewSliceSource(reqs []Request) *SliceTraceSource { return trace.NewSliceSource(reqs) }

// FuncSource adapts a legacy pull closure to a TraceSource.
func FuncSource(next func() (Request, bool)) TraceSource { return trace.FuncSource(next) }

// MapTraceFile memory-maps a binary trace file as a TraceSource; the
// records are decoded in place without copying or parsing.
func MapTraceFile(path string) (*MappedTrace, error) { return trace.MapFile(path) }

// WorkloadSource adapts a workload generator to an unbounded
// TraceSource; bound it with the driver's request budget.
func WorkloadSource(g Workload) TraceSource { return workload.AsSource(g) }

// NewWorkload builds a named Table 4 workload at the given footprint
// scale (1.0 = paper size) and seed.
func NewWorkload(name string, scale float64, seed uint64) (Workload, error) {
	return workload.New(name, scale, seed)
}

// Server throughput model (substitute for the paper's M5 platform).
type ServerModel = server.Model

// DefaultServer returns the Table 3 platform model (8 workers).
func DefaultServer() ServerModel { return server.Default() }

// Experiment harness: regenerate any paper table or figure.
type (
	// ExperimentOptions tunes scale, seed and request budget.
	ExperimentOptions = experiments.Options
	// ResultTable is a reproduced paper artifact.
	ResultTable = experiments.Table
)

// Experiments lists every artifact ID (table1..4, fig1b..fig12,
// ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact.
func RunExperiment(id string, o ExperimentOptions) (*ResultTable, error) {
	return experiments.Run(id, o)
}

// DefaultExperimentOptions is the standard 1/16-scale configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Simulated time units, re-exported for configuration convenience.
type Duration = sim.Duration

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Flash-as-SSD substrate: the log-structured FTL the paper's
// background section contrasts the disk cache against.
type (
	// FTLConfig sizes a log-structured Flash translation layer.
	FTLConfig = ftl.Config
	// FTL is a flash-as-disk device with out-of-place writes and
	// greedy cleaning.
	FTL = ftl.FTL
)

// NewFTL builds a log-structured FTL over a fresh NAND device.
func NewFTL(cfg FTLConfig) *FTL { return ftl.New(cfg) }

// Multi-chip deployment: pages striped across independent channels.
type (
	// ArrayConfig sizes a multi-chip Flash array.
	ArrayConfig = array.Config
	// FlashArray schedules operations across striped chips.
	FlashArray = array.Array
)

// NewFlashArray builds a page-striped multi-chip array. Degenerate
// configurations are reported as errors.
func NewFlashArray(cfg ArrayConfig) (*FlashArray, error) { return array.New(cfg) }

// Cell density modes, re-exported for configuration.
const (
	// ModeSLC stores one bit per cell (fast, durable).
	ModeSLC = wear.SLC
	// ModeMLC stores two bits per cell (dense, default).
	ModeMLC = wear.MLC
)

// Reliability realism: deterministic retention-loss and read-disturb
// error processes, configured via CacheConfig.Retention / .Disturb
// (zero values disable both, preserving the ideal-NAND behaviour).
type (
	// RetentionParams models charge loss with dwell time since a page
	// was programmed, accelerated by accumulated wear.
	RetentionParams = wear.RetentionParams
	// DisturbParams models read disturb accumulating with sibling
	// reads on a block, cleared by erase.
	DisturbParams = wear.DisturbParams
	// Clock is the simulated time base; attach one to a standalone
	// Cache via AttachClock so retention dwell advances (the hierarchy
	// and engine attach theirs automatically).
	Clock = sim.Clock
)

// OpenCacheOption configures OpenCache (functional options).
type OpenCacheOption = core.OpenOption

// WithRecovery makes OpenCache crash-tolerant: a metadata image that
// fails validation yields a cold (empty) cache and a RecoveryReport
// instead of an error.
func WithRecovery() OpenCacheOption { return core.WithRecovery() }

// WithObserver attaches an observability sink to the opened cache. A
// nil or disabled observer is a no-op.
func WithObserver(o *Observer) OpenCacheOption { return core.WithObserver(o) }

// OpenCache is the single entry point for building a Flash disk cache:
// fresh when r is nil, warm from a Cache.SaveMetadata image otherwise
// (the paper's tables are sourced from disk at run time, section 3).
// Without WithRecovery a truncated or corrupted image is rejected with
// an error wrapping ErrCorruptMetadata and the cache is nil; with it a
// rejected image cold-starts and the report says why.
func OpenCache(cfg CacheConfig, r io.Reader, opts ...OpenCacheOption) (*Cache, RecoveryReport, error) {
	return core.Open(cfg, r, opts...)
}

// Fault injection and recovery API.
type (
	// FaultPlan configures a deterministic fault-injection campaign
	// (transient read flips, program/erase failures, grown bad
	// blocks); attach one via CacheConfig.Faults.
	FaultPlan = fault.Plan
	// FaultStats counts the faults an injector delivered.
	FaultStats = fault.Stats
	// RecoveryReport describes how OpenCache brought a cache back
	// (clean load vs. cold start).
	RecoveryReport = core.RecoveryReport
)

// ErrCorruptMetadata tags every corruption-class metadata load
// failure; test with errors.Is.
var ErrCorruptMetadata = core.ErrCorruptMetadata

// Observability API: a deterministic metrics registry plus decision-
// event tracing, timestamped in simulated time (see internal/obs).
type (
	// ObsOptions configures an Observer (metrics, snapshot interval,
	// tracing, ring-buffer capacity).
	ObsOptions = obs.Options
	// Observer is one simulation's observability sink; attach via
	// SystemConfig.Observer, EngineConfig.Obs or OpenCache's
	// WithObserver.
	Observer = obs.Observer
	// ObsReport is the merged observability output of a run.
	ObsReport = obs.Report
	// ObsSnapshot is one cumulative metrics capture.
	ObsSnapshot = obs.Snapshot
	// ObsEvent is one structured decision event.
	ObsEvent = obs.Event
)

// NewObserver builds an observability sink from the options.
func NewObserver(o ObsOptions) *Observer { return obs.New(o) }

// Simulator is the driving surface shared by System (monolithic) and
// Engine (sharded): one code path replays a stream and collects the
// merged counters and observability report from either.
type Simulator = hier.Simulator

// CampaignCheckpoint is a whole-campaign snapshot (every shard's full
// simulator state plus the stream position) that resumes
// bit-identically to an unbroken run; build one with
// Engine.Checkpoint, apply with Engine.Restore.
type CampaignCheckpoint = engine.Checkpoint

// ErrCorruptCheckpoint tags every checkpoint-file validation failure;
// test with errors.Is.
var ErrCorruptCheckpoint = engine.ErrCorruptCheckpoint

// WriteCampaignCheckpoint serialises a checkpoint inside the
// CRC-guarded envelope (deterministic bytes for identical states).
func WriteCampaignCheckpoint(w io.Writer, ck *CampaignCheckpoint) error {
	return engine.WriteCheckpoint(w, ck)
}

// ReadCampaignCheckpoint decodes and validates a checkpoint file.
func ReadCampaignCheckpoint(r io.Reader) (*CampaignCheckpoint, error) {
	return engine.ReadCheckpoint(r)
}
