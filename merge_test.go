package flashdc

// Reflection-driven tests for the stats Merge methods the sharded
// engine relies on: every exported numeric field of every mergeable
// counter struct must come out as the sum of the inputs. Driving the
// check by reflection means a field added to a struct but forgotten in
// its Merge fails here instead of silently under-reporting in merged
// shard reports.

import (
	"reflect"
	"testing"

	"flashdc/internal/core"
	"flashdc/internal/disk"
	"flashdc/internal/dram"
	"flashdc/internal/fault"
	"flashdc/internal/hier"
	"flashdc/internal/nand"
	"flashdc/internal/obs"
	"flashdc/internal/power"
	"flashdc/internal/sched"
	"flashdc/internal/tables"
	"flashdc/internal/trace"
)

// fillCounters assigns a distinct nonzero value to every settable
// numeric field of the struct v points to, returning how many fields
// it touched. Values are spaced so sums cannot collide by accident.
func fillCounters(t *testing.T, v reflect.Value, base int64) int {
	t.Helper()
	n := 0
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanSet() {
			continue
		}
		n++
		val := base + int64(i+1)*7
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(val)
		case reflect.Float64:
			f.SetFloat(float64(val))
		case reflect.String:
			n-- // identity fields (TierStats.Name) are not counters
		default:
			t.Fatalf("%s.%s: unhandled kind %v", v.Type(), v.Type().Field(i).Name, f.Kind())
		}
	}
	return n
}

// checkMergedSums verifies every settable numeric field of got equals
// the sum of the corresponding fields of a and b.
func checkMergedSums(t *testing.T, got, a, b reflect.Value) {
	t.Helper()
	for i := 0; i < got.NumField(); i++ {
		f := got.Field(i)
		if !f.CanSet() {
			continue
		}
		name := got.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			if want := a.Field(i).Int() + b.Field(i).Int(); f.Int() != want {
				t.Errorf("%s.%s = %d, want %d", got.Type(), name, f.Int(), want)
			}
		case reflect.Float64:
			if want := a.Field(i).Float() + b.Field(i).Float(); f.Float() != want {
				t.Errorf("%s.%s = %v, want %v", got.Type(), name, f.Float(), want)
			}
		}
	}
}

// mergeByName invokes dst.Merge(src) whatever the method's receiver
// and argument shapes (pointer or value) are.
func mergeByName(t *testing.T, dst, src reflect.Value) {
	t.Helper()
	m := dst.Addr().MethodByName("Merge")
	if !m.IsValid() {
		t.Fatalf("%s has no Merge method", dst.Type())
	}
	arg := src
	if m.Type().In(0).Kind() == reflect.Ptr {
		arg = src.Addr()
	}
	m.Call([]reflect.Value{arg})
}

func TestStatsMergeSumsEveryField(t *testing.T) {
	structs := []any{
		hier.Stats{},
		hier.TierStats{},
		core.Stats{},
		nand.Stats{},
		disk.Stats{},
		dram.Stats{},
		fault.Stats{},
		tables.FGST{},
		sched.Stats{},
	}
	for _, s := range structs {
		typ := reflect.TypeOf(s)
		t.Run(typ.String(), func(t *testing.T) {
			a := reflect.New(typ).Elem()
			b := reflect.New(typ).Elem()
			if n := fillCounters(t, a, 1000); n == 0 {
				t.Fatalf("%s has no settable counter fields", typ)
			}
			fillCounters(t, b, 500000)
			merged := reflect.New(typ).Elem()
			merged.Set(a)
			mergeByName(t, merged, b)
			checkMergedSums(t, merged, a, b)
		})
	}
}

// checkMergedByTags walks every field of an obs snapshot struct and
// verifies the merged value obeys the field's `merge` tag: "keep"
// retains the receiver's value, "max" takes the maximum, and untagged
// fields accumulate (scalars and slice elements sum; map entries sum
// key-wise, struct-valued maps recursively). A field added to the
// struct in a shape this walk doesn't know fails loudly, the same
// honesty property the flat counter structs get from
// TestStatsMergeSumsEveryField.
func checkMergedByTags(t *testing.T, prefix string, merged, a, b reflect.Value) {
	t.Helper()
	for i := 0; i < merged.NumField(); i++ {
		sf := merged.Type().Field(i)
		name := prefix + sf.Name
		m, av, bv := merged.Field(i), a.Field(i), b.Field(i)
		switch sf.Tag.Get("merge") {
		case "keep":
			if !reflect.DeepEqual(m.Interface(), av.Interface()) {
				t.Errorf("%s = %v, want receiver's %v (merge:\"keep\")", name, m, av)
			}
		case "max":
			want := av.Int()
			if bv.Int() > want {
				want = bv.Int()
			}
			if m.Int() != want {
				t.Errorf("%s = %d, want max %d", name, m.Int(), want)
			}
		case "":
			switch m.Kind() {
			case reflect.Int64:
				if m.Int() != av.Int()+bv.Int() {
					t.Errorf("%s = %d, want sum %d", name, m.Int(), av.Int()+bv.Int())
				}
			case reflect.Slice:
				if m.Len() != av.Len() || av.Len() != bv.Len() {
					t.Fatalf("%s: unequal slice lengths", name)
				}
				for j := 0; j < m.Len(); j++ {
					if m.Index(j).Int() != av.Index(j).Int()+bv.Index(j).Int() {
						t.Errorf("%s[%d] = %d, want element-wise sum", name, j, m.Index(j).Int())
					}
				}
			case reflect.Map:
				iter := m.MapRange()
				for iter.Next() {
					k := iter.Key()
					mv := iter.Value()
					akv, bkv := av.MapIndex(k), bv.MapIndex(k)
					switch mv.Kind() {
					case reflect.Int64:
						var want int64
						if akv.IsValid() {
							want += akv.Int()
						}
						if bkv.IsValid() {
							want += bkv.Int()
						}
						if mv.Int() != want {
							t.Errorf("%s[%v] = %d, want %d", name, k, mv.Int(), want)
						}
					case reflect.Float64:
						var want float64
						if akv.IsValid() {
							want += akv.Float()
						}
						if bkv.IsValid() {
							want += bkv.Float()
						}
						if mv.Float() != want {
							t.Errorf("%s[%v] = %v, want %v", name, k, mv.Float(), want)
						}
					case reflect.Struct:
						if !akv.IsValid() || !bkv.IsValid() {
							continue // entry from one shard copies through
						}
						checkMergedByTags(t, name+"."+k.String()+".", mv, akv, bkv)
					default:
						t.Fatalf("%s: unhandled map value kind %v", name, mv.Kind())
					}
				}
			default:
				t.Fatalf("%s: kind %v needs a merge tag or map/slice merge support", name, m.Kind())
			}
		default:
			t.Fatalf("%s: unknown merge tag %q", name, sf.Tag.Get("merge"))
		}
	}
}

func TestObsSnapshotMergeHonoursTags(t *testing.T) {
	hA := obs.HistogramSnapshot{Bounds: []int64{10, 20}, Buckets: []int64{1, 2, 3}, Count: 6, Sum: 30}
	hB := obs.HistogramSnapshot{Bounds: []int64{10, 20}, Buckets: []int64{4, 5, 6}, Count: 15, Sum: 100}
	a := obs.Snapshot{Seq: 3, T: 10, Final: true,
		Counters:   map[string]int64{"c": 1, "onlyA": 2},
		Gauges:     map[string]float64{"g": 1.5},
		Histograms: map[string]obs.HistogramSnapshot{"h": hA}}
	b := obs.Snapshot{Seq: 3, T: 25,
		Counters:   map[string]int64{"c": 10, "onlyB": 20},
		Gauges:     map[string]float64{"g": 2.5},
		Histograms: map[string]obs.HistogramSnapshot{"h": hB}}
	merged := a.Clone()
	merged.Merge(b)
	checkMergedByTags(t, "Snapshot.", reflect.ValueOf(merged), reflect.ValueOf(a), reflect.ValueOf(b))

	mh := hA.Clone()
	mh.Merge(hB)
	checkMergedByTags(t, "HistogramSnapshot.",
		reflect.ValueOf(mh), reflect.ValueOf(hA), reflect.ValueOf(hB))
}

func TestPowerBreakdownAdd(t *testing.T) {
	a := power.Breakdown{MemRead: 1, MemWrite: 2, MemIdle: 3, Flash: 4, Disk: 5}
	b := power.Breakdown{MemRead: 10, MemWrite: 20, MemIdle: 30, Flash: 40, Disk: 50}
	got := reflect.ValueOf(a.Add(b))
	checkMergedSums(t, got, reflect.ValueOf(a), reflect.ValueOf(b))
	if sum := a.Add(b); sum.Total() != a.Total()+b.Total() {
		t.Fatalf("Total = %v, want %v", sum.Total(), a.Total()+b.Total())
	}
}

func TestTraceStatsMerge(t *testing.T) {
	// Two accumulators over overlapping streams: counters add, the
	// unique-page footprint unions.
	a, b := trace.NewStats(), trace.NewStats()
	a.Add(trace.Request{Op: trace.OpRead, LBA: 0, Pages: 4})
	a.Add(trace.Request{Op: trace.OpWrite, LBA: 2, Pages: 2})
	b.Add(trace.Request{Op: trace.OpRead, LBA: 2, Pages: 6})
	a.Merge(b)
	if a.Requests != 3 || a.ReadPages != 10 || a.WritePages != 2 {
		t.Fatalf("counters: %+v", a)
	}
	// Pages 0..7 were touched across both streams.
	if a.UniquePages() != 8 {
		t.Fatalf("UniquePages = %d, want 8", a.UniquePages())
	}
	a.Merge(nil) // must be a no-op
	if a.Requests != 3 {
		t.Fatal("nil merge disturbed the receiver")
	}
}
