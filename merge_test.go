package flashdc

// Reflection-driven tests for the stats Merge methods the sharded
// engine relies on: every exported numeric field of every mergeable
// counter struct must come out as the sum of the inputs. Driving the
// check by reflection means a field added to a struct but forgotten in
// its Merge fails here instead of silently under-reporting in merged
// shard reports.

import (
	"reflect"
	"testing"

	"flashdc/internal/core"
	"flashdc/internal/disk"
	"flashdc/internal/dram"
	"flashdc/internal/fault"
	"flashdc/internal/hier"
	"flashdc/internal/nand"
	"flashdc/internal/power"
	"flashdc/internal/tables"
	"flashdc/internal/trace"
)

// fillCounters assigns a distinct nonzero value to every settable
// numeric field of the struct v points to, returning how many fields
// it touched. Values are spaced so sums cannot collide by accident.
func fillCounters(t *testing.T, v reflect.Value, base int64) int {
	t.Helper()
	n := 0
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanSet() {
			continue
		}
		n++
		val := base + int64(i+1)*7
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(val)
		case reflect.Float64:
			f.SetFloat(float64(val))
		case reflect.String:
			n-- // identity fields (TierStats.Name) are not counters
		default:
			t.Fatalf("%s.%s: unhandled kind %v", v.Type(), v.Type().Field(i).Name, f.Kind())
		}
	}
	return n
}

// checkMergedSums verifies every settable numeric field of got equals
// the sum of the corresponding fields of a and b.
func checkMergedSums(t *testing.T, got, a, b reflect.Value) {
	t.Helper()
	for i := 0; i < got.NumField(); i++ {
		f := got.Field(i)
		if !f.CanSet() {
			continue
		}
		name := got.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			if want := a.Field(i).Int() + b.Field(i).Int(); f.Int() != want {
				t.Errorf("%s.%s = %d, want %d", got.Type(), name, f.Int(), want)
			}
		case reflect.Float64:
			if want := a.Field(i).Float() + b.Field(i).Float(); f.Float() != want {
				t.Errorf("%s.%s = %v, want %v", got.Type(), name, f.Float(), want)
			}
		}
	}
}

// mergeByName invokes dst.Merge(src) whatever the method's receiver
// and argument shapes (pointer or value) are.
func mergeByName(t *testing.T, dst, src reflect.Value) {
	t.Helper()
	m := dst.Addr().MethodByName("Merge")
	if !m.IsValid() {
		t.Fatalf("%s has no Merge method", dst.Type())
	}
	arg := src
	if m.Type().In(0).Kind() == reflect.Ptr {
		arg = src.Addr()
	}
	m.Call([]reflect.Value{arg})
}

func TestStatsMergeSumsEveryField(t *testing.T) {
	structs := []any{
		hier.Stats{},
		hier.TierStats{},
		core.Stats{},
		nand.Stats{},
		disk.Stats{},
		dram.Stats{},
		fault.Stats{},
		tables.FGST{},
	}
	for _, s := range structs {
		typ := reflect.TypeOf(s)
		t.Run(typ.String(), func(t *testing.T) {
			a := reflect.New(typ).Elem()
			b := reflect.New(typ).Elem()
			if n := fillCounters(t, a, 1000); n == 0 {
				t.Fatalf("%s has no settable counter fields", typ)
			}
			fillCounters(t, b, 500000)
			merged := reflect.New(typ).Elem()
			merged.Set(a)
			mergeByName(t, merged, b)
			checkMergedSums(t, merged, a, b)
		})
	}
}

func TestPowerBreakdownAdd(t *testing.T) {
	a := power.Breakdown{MemRead: 1, MemWrite: 2, MemIdle: 3, Flash: 4, Disk: 5}
	b := power.Breakdown{MemRead: 10, MemWrite: 20, MemIdle: 30, Flash: 40, Disk: 50}
	got := reflect.ValueOf(a.Add(b))
	checkMergedSums(t, got, reflect.ValueOf(a), reflect.ValueOf(b))
	if sum := a.Add(b); sum.Total() != a.Total()+b.Total() {
		t.Fatalf("Total = %v, want %v", sum.Total(), a.Total()+b.Total())
	}
}

func TestTraceStatsMerge(t *testing.T) {
	// Two accumulators over overlapping streams: counters add, the
	// unique-page footprint unions.
	a, b := trace.NewStats(), trace.NewStats()
	a.Add(trace.Request{Op: trace.OpRead, LBA: 0, Pages: 4})
	a.Add(trace.Request{Op: trace.OpWrite, LBA: 2, Pages: 2})
	b.Add(trace.Request{Op: trace.OpRead, LBA: 2, Pages: 6})
	a.Merge(b)
	if a.Requests != 3 || a.ReadPages != 10 || a.WritePages != 2 {
		t.Fatalf("counters: %+v", a)
	}
	// Pages 0..7 were touched across both streams.
	if a.UniquePages() != 8 {
		t.Fatalf("UniquePages = %d, want 8", a.UniquePages())
	}
	a.Merge(nil) // must be a no-op
	if a.Requests != 3 {
		t.Fatal("nil merge disturbed the receiver")
	}
}
