package flashdc

// End-to-end integrity: real 2KB payloads stored on the simulated NAND
// device, corrupted by wear-driven bit flips, and recovered by the
// *actual* BCH+CRC codec — the full section 4 pipeline on real data,
// not latency bookkeeping. This is the test that ties internal/nand,
// internal/wear, internal/ecc and internal/bch together.

import (
	"bytes"
	"errors"
	"testing"

	"flashdc/internal/ecc"
	"flashdc/internal/nand"
	"flashdc/internal/sim"
	"flashdc/internal/wear"
)

// storePage encodes data at the given strength and programs it with
// its spare image.
func storePage(t *testing.T, dev *nand.Device, codec *ecc.Codec, a nand.Addr,
	s ecc.Strength, data []byte) {
	t.Helper()
	spare := codec.Encode(s, data)
	if _, err := dev.ProgramPage(a, 0, data, spare); err != nil {
		t.Fatal(err)
	}
}

// loadPage reads a page back and runs the real decoder at the given
// strength.
func loadPage(dev *nand.Device, codec *ecc.Codec, a nand.Addr,
	s ecc.Strength) ([]byte, int, error) {
	buf, _, err := dev.ReadPage(a)
	if err != nil {
		return nil, 0, err
	}
	corrected, err := codec.Decode(s, buf.Data, buf.Spare)
	return buf.Data, corrected, err
}

func TestEndToEndIntegrityFreshDevice(t *testing.T) {
	dev := nand.New(nand.Config{Blocks: 2, InitialMode: wear.SLC, Seed: 1})
	codec := ecc.NewCodec()
	rng := sim.NewRNG(2)
	for slot := 0; slot < 8; slot++ {
		data := make([]byte, ecc.PageSize)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		a := nand.Addr{Slot: slot}
		storePage(t, dev, codec, a, 4, data)
		got, corrected, err := loadPage(dev, codec, a, 4)
		if err != nil || corrected != 0 {
			t.Fatalf("fresh page slot %d: corrected=%d err=%v", slot, corrected, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("slot %d data mismatch", slot)
		}
	}
}

// ageDevice erases block 0 until its first page reports the target
// bit-error count, returning that count (which may overshoot).
func ageDevice(t *testing.T, dev *nand.Device, target int, budget int) int {
	t.Helper()
	for i := 0; i < budget; i++ {
		if _, err := dev.Erase(0); err != nil {
			t.Fatal(err)
		}
		if e := dev.BitErrors(nand.Addr{}); e >= target {
			return e
		}
	}
	return dev.BitErrors(nand.Addr{})
}

func TestEndToEndIntegrityWornDevice(t *testing.T) {
	dev := nand.New(nand.Config{
		Blocks: 2, InitialMode: wear.MLC, Seed: 3, WearAcceleration: 3000,
	})
	codec := ecc.NewCodec()
	errs := ageDevice(t, dev, 3, 500)
	if errs < 1 || errs > 10 {
		t.Skipf("aged to %d bit errors; outside the useful window", errs)
	}
	rng := sim.NewRNG(4)
	data := make([]byte, ecc.PageSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	a := nand.Addr{Slot: 0}

	// Strength covering the wear: the real decoder must restore the
	// exact bytes despite the device flipping errs cells.
	strength := ecc.Strength(errs + 2)
	storePage(t, dev, codec, a, strength, data)
	got, corrected, err := loadPage(dev, codec, a, strength)
	if err != nil {
		t.Fatalf("decode on worn device: %v", err)
	}
	if corrected == 0 {
		t.Fatal("no corrections despite worn cells")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("worn page not restored bit-exact")
	}
}

func TestEndToEndUnderProvisionedStrengthFails(t *testing.T) {
	dev := nand.New(nand.Config{
		Blocks: 2, InitialMode: wear.MLC, Seed: 5, WearAcceleration: 3000,
	})
	codec := ecc.NewCodec()
	errs := ageDevice(t, dev, 4, 600)
	if errs < 3 || errs > 12 {
		t.Skipf("aged to %d bit errors; outside the useful window", errs)
	}
	rng := sim.NewRNG(6)
	data := make([]byte, ecc.PageSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	a := nand.Addr{Slot: 0}
	// Deliberately under-provisioned ECC: t = errs - 2.
	weak := ecc.Strength(errs - 2)
	if weak < 1 {
		weak = 1
	}
	storePage(t, dev, codec, a, weak, data)
	_, _, err := loadPage(dev, codec, a, weak)
	if err == nil {
		t.Fatalf("decode at t=%d succeeded despite %d worn cells", weak, errs)
	}
	if !errors.Is(err, ecc.ErrUncorrectable) && !errors.Is(err, ecc.ErrSilentCorruption) {
		t.Fatalf("unexpected failure mode: %v", err)
	}
	// This is precisely the moment the programmable controller would
	// stage a stronger code or a density reduction (section 5.2.1).
}

func TestEndToEndDensityReductionRecoversPage(t *testing.T) {
	// The section 5.2.1 density response, on real bytes: a block worn
	// beyond its MLC correction budget becomes reliable again when the
	// slot switches to SLC mode (10x endurance margin).
	dev := nand.New(nand.Config{
		Blocks: 2, InitialMode: wear.MLC, Seed: 7, WearAcceleration: 3000,
	})
	codec := ecc.NewCodec()
	errs := ageDevice(t, dev, 5, 800)
	if errs < 3 {
		t.Skipf("aged to only %d bit errors", errs)
	}
	rng := sim.NewRNG(8)
	data := make([]byte, ecc.PageSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	const strength = 2
	mlcErrs := dev.BitErrors(nand.Addr{Slot: 0})
	if mlcErrs <= strength {
		t.Skipf("MLC errors %d already within t=%d", mlcErrs, strength)
	}
	// Switch the slot to SLC (legal: block just erased) and verify
	// the same wear now fits the weak code.
	if err := dev.SetMode(0, 0, wear.SLC); err != nil {
		t.Fatal(err)
	}
	slcErrs := dev.BitErrors(nand.Addr{Slot: 0})
	if slcErrs >= mlcErrs {
		t.Fatalf("SLC mode did not reduce bit errors: %d -> %d", mlcErrs, slcErrs)
	}
	if slcErrs > strength {
		t.Skipf("even SLC mode has %d errors; wear too advanced for t=%d", slcErrs, strength)
	}
	a := nand.Addr{Slot: 0}
	storePage(t, dev, codec, a, strength, data)
	got, _, err := loadPage(dev, codec, a, strength)
	if err != nil {
		t.Fatalf("SLC-mode decode failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("SLC-mode page not restored")
	}
}
