package flashdc

import (
	"bytes"
	"testing"
)

// TestPublicAPICacheRoundTrip exercises the re-exported cache API end
// to end.
func TestPublicAPICacheRoundTrip(t *testing.T) {
	cfg := DefaultCacheConfig(8 << 20)
	cfg.Seed = 1
	c := NewCache(cfg)
	if out := c.Read(42); out.Hit {
		t.Fatal("cold hit")
	}
	c.Insert(42)
	if out := c.Read(42); !out.Hit {
		t.Fatal("miss after insert")
	}
	c.Write(43)
	if !c.Contains(43) {
		t.Fatal("write not cached")
	}
}

// TestPublicAPIHierarchy drives a small system with a catalog
// workload.
func TestPublicAPIHierarchy(t *testing.T) {
	s := NewSystem(SystemConfig{DRAMBytes: 1 << 20, FlashBytes: 16 << 20, Seed: 2})
	g, err := NewWorkload("dbt2", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.Handle(g.Next())
	}
	st := s.Stats()
	if st.Requests != 20000 || st.PDCHits == 0 || st.FlashHits == 0 {
		t.Fatalf("hierarchy stats %+v", st)
	}
	bw := DefaultServer().Bandwidth(st.AvgLatency())
	if bw <= 0 {
		t.Fatal("no bandwidth")
	}
}

// TestPublicAPIWorkloads checks the catalog is complete and every
// entry constructs.
func TestPublicAPIWorkloads(t *testing.T) {
	specs := Workloads()
	if len(specs) != 12 {
		t.Fatalf("catalog has %d workloads, want 12 (Table 4)", len(specs))
	}
	for _, spec := range specs {
		g, err := NewWorkload(spec.Name, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		r := g.Next()
		if r.LBA < 0 {
			t.Fatalf("%s produced bad request", spec.Name)
		}
	}
	if _, err := NewWorkload("bogus", 1, 1); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

// TestPublicAPIExperiments checks the registry covers every paper
// artifact and one runs.
func TestPublicAPIExperiments(t *testing.T) {
	ids := Experiments()
	want := map[string]bool{
		"table1": true, "table2": true, "table3": true, "table4": true,
		"fig1b": true, "fig4": true, "fig6a": true, "fig6b": true,
		"fig7": true, "fig9": true, "fig10": true, "fig11": true, "fig12": true,
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for id := range want {
		if !have[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	tab, err := RunExperiment("fig6a", ExperimentOptions{Seed: 1, Scale: 1.0 / 128})
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("fig6a: %v", err)
	}
	if _, err := RunExperiment("nope", DefaultExperimentOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestDurationUnits sanity-checks re-exported units.
func TestDurationUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("unit ladder broken")
	}
	var d Duration = 3 * Millisecond
	if d.Seconds() != 0.003 {
		t.Fatal("Seconds conversion broken")
	}
}

// TestOpConstants checks the request direction re-exports.
func TestOpConstants(t *testing.T) {
	r := Request{Op: OpWrite, LBA: 9, Pages: 2}
	if r.Op.String() != "W" {
		t.Fatal("op re-export broken")
	}
	n := 0
	r.Expand(func(int64) { n++ })
	if n != 2 {
		t.Fatal("Expand broken")
	}
	_ = OpRead
}

// TestPublicAPIFTL exercises the flash-as-SSD substrate through the
// re-exports.
func TestPublicAPIFTL(t *testing.T) {
	f := NewFTL(FTLConfig{Blocks: 8, Mode: ModeSLC, Seed: 1})
	if _, err := f.Write(42); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(42); err != nil {
		t.Fatal(err)
	}
	if f.Stats().HostWrites != 1 {
		t.Fatal("FTL stats wrong")
	}
}

// TestPublicAPIArray exercises the multi-chip array re-exports.
func TestPublicAPIArray(t *testing.T) {
	a, err := NewFlashArray(ArrayConfig{Chips: 2, BlocksPerChip: 2, Mode: ModeMLC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chips() != 2 {
		t.Fatal("chips wrong")
	}
	if _, err := a.ProgramAt(0, 9, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadAt(0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIPersistence round-trips cache metadata through the
// re-exported entry points.
func TestPublicAPIPersistence(t *testing.T) {
	cfg := DefaultCacheConfig(8 << 20)
	cfg.Seed = 5
	c := NewCache(cfg)
	c.Insert(7)
	var buf bytes.Buffer
	if err := c.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	restored, rep, err := OpenCache(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdStart {
		t.Fatal("clean image reported a cold start")
	}
	if !restored.Contains(7) {
		t.Fatal("restored cache lost the page")
	}
}

// TestPublicAPIOpenCacheRecovery exercises the crash-tolerant path and
// the deprecated wrappers' delegation to OpenCache.
func TestPublicAPIOpenCacheRecovery(t *testing.T) {
	cfg := DefaultCacheConfig(8 << 20)
	cfg.Seed = 5
	garbage := bytes.NewBufferString("not a metadata image")
	c, rep, err := OpenCache(cfg, garbage, WithRecovery())
	if err != nil {
		t.Fatalf("WithRecovery must not fail: %v", err)
	}
	if !rep.ColdStart || rep.Err == nil {
		t.Fatalf("want cold-start report with cause, got %+v", rep)
	}
	if c == nil || c.Dead() {
		t.Fatal("recovered cache unusable")
	}

	obs := NewObserver(ObsOptions{Metrics: true, Trace: true})
	fresh, _, err := OpenCache(cfg, nil, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	fresh.Insert(7)
	if evs := obs.Trace.Events(); len(evs) == 0 || evs[0].Kind != "open" {
		t.Fatalf("want an open event first, got %v", evs)
	}
}
