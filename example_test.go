package flashdc_test

import (
	"fmt"

	"flashdc"
)

// ExampleNewCache shows the basic disk-cache flow of paper section
// 5.1: look up, fetch from disk on a miss, insert, hit.
func ExampleNewCache() {
	cfg := flashdc.DefaultCacheConfig(16 << 20)
	cfg.Seed = 1
	cache := flashdc.NewCache(cfg)

	if out := cache.Read(100); !out.Hit {
		// ... read page 100 from disk here ...
		cache.Insert(100)
	}
	out := cache.Read(100)
	fmt.Println("hit:", out.Hit)
	// Output: hit: true
}

// ExampleNewSystem assembles the Figure 2 hierarchy and serves one
// request.
func ExampleNewSystem() {
	sys := flashdc.NewSystem(flashdc.SystemConfig{
		DRAMBytes:  1 << 20,
		FlashBytes: 16 << 20,
		Seed:       1,
	})
	sys.Handle(flashdc.Request{Op: flashdc.OpRead, LBA: 5, Pages: 1})
	sys.Handle(flashdc.Request{Op: flashdc.OpRead, LBA: 5, Pages: 1})
	st := sys.Stats()
	fmt.Println("requests:", st.Requests, "PDC hits:", st.PDCHits)
	// Output: requests: 2 PDC hits: 1
}

// ExampleNewWorkload builds a Table 4 workload and inspects a request.
func ExampleNewWorkload() {
	g, err := flashdc.NewWorkload("alpha2", 0.01, 1)
	if err != nil {
		panic(err)
	}
	r := g.Next()
	fmt.Println("pages per request:", r.Pages, "in range:", r.LBA >= 0 && r.LBA < g.FootprintPages())
	// Output: pages per request: 1 in range: true
}

// ExampleRunExperiment regenerates one paper artifact.
func ExampleRunExperiment() {
	tab, err := flashdc.RunExperiment("fig6a", flashdc.ExperimentOptions{Seed: 1, Scale: 1.0 / 128})
	if err != nil {
		panic(err)
	}
	fmt.Println(tab.ID, "rows:", len(tab.Rows))
	// Output: fig6a rows: 10
}
