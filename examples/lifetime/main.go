// Lifetime: the Figure 12 scenario — run a write-heavy financial
// workload against the Flash cache until total Flash failure, with the
// programmable controller versus a fixed BCH-1 controller, and watch
// the controller's ECC/density decisions along the way.
package main

import (
	"fmt"

	"flashdc"
)

func lifetime(programmable bool) (accesses int64, eccEvents, densityEvents int64) {
	g, err := flashdc.NewWorkload("Financial1", 1.0/32, 11)
	if err != nil {
		panic(err)
	}
	cfg := flashdc.DefaultCacheConfig(g.FootprintPages() * 2048 / 2)
	cfg.Programmable = programmable
	cfg.Seed = 11
	// Compress wear so end of life arrives within the demo budget;
	// identical for both controllers, so the ratio is meaningful.
	cfg.WearAcceleration = 2000
	cache := flashdc.NewCache(cfg)

	for i := 0; i < 10_000_000 && !cache.Dead(); i++ {
		r := g.Next()
		r.Expand(func(lba int64) {
			accesses++
			if r.Op == flashdc.OpWrite {
				cache.Write(lba)
				return
			}
			if !cache.Read(lba).Hit {
				cache.Insert(lba)
			}
		})
	}
	gl := cache.Global()
	return accesses, gl.ECCReconfigs, gl.DensityReconfigs
}

func main() {
	fmt.Println("Flash lifetime to total failure: programmable controller vs BCH-1")
	fmt.Println("(Figure 12 scenario: Financial1, Flash = working set / 2, accelerated wear)")
	fmt.Println()

	progLife, ecc, density := lifetime(true)
	baseLife, _, _ := lifetime(false)

	fmt.Printf("programmable controller: %8d accesses until total failure\n", progLife)
	fmt.Printf("  controller decisions:  %d ECC strength increases, %d density reductions\n",
		ecc, density)
	fmt.Printf("fixed BCH-1 controller:  %8d accesses until total failure\n", baseLife)
	fmt.Printf("\nlifetime extension: %.1fx (paper reports ~20x on average)\n",
		float64(progLife)/float64(baseLife))
}
