// Lifetime: the Figure 12 scenario — run a write-heavy financial
// workload against the Flash cache until total Flash failure, with the
// programmable controller versus a fixed BCH-1 controller, and watch
// the controller's ECC/density decisions along the way.
//
// The run also exercises the reliability-realism knobs: a simulated
// clock drives retention dwell (charge loss on pages that sit
// unrewritten), per-block read counters accumulate read disturb, and
// the background scrubber's refresh policy rewrites pages whose
// predicted error count approaches their correction capability.
package main

import (
	"fmt"

	"flashdc"
)

// opPeriod is how much simulated time each page access represents;
// large on purpose so retention dwell matters within the demo budget.
const opPeriod = 10 * flashdc.Second

func lifetime(programmable bool) (accesses int64, st flashdc.CacheStats, ecc, density int64) {
	g, err := flashdc.NewWorkload("Financial1", 1.0/32, 11)
	if err != nil {
		panic(err)
	}
	cfg := flashdc.DefaultCacheConfig(g.FootprintPages() * 2048 / 2)
	cfg.Programmable = programmable
	cfg.Seed = 11
	// Compress wear so end of life arrives within the demo budget;
	// identical for both controllers, so the ratio is meaningful.
	cfg.WearAcceleration = 2000
	// Reliability realism: accelerated retention loss, read disturb
	// every 20k sibling reads, and a scrubber (every 256 host ops)
	// whose refresh policy rewrites pages at 75% of ECC capability.
	cfg.Retention = flashdc.RetentionParams{Accel: 5e4}
	cfg.Disturb = flashdc.DisturbParams{ReadsPerBit: 20000}
	cfg.ScrubEvery = 256
	cfg.RefreshThreshold = 0.75
	cache := flashdc.NewCache(cfg)

	// The clock gives retention dwell a time base; every access
	// advances it by opPeriod.
	var clk flashdc.Clock
	cache.AttachClock(&clk)

	for i := 0; i < 10_000_000 && !cache.Dead(); i++ {
		r := g.Next()
		r.Expand(func(lba int64) {
			accesses++
			clk.Advance(opPeriod)
			if r.Op == flashdc.OpWrite {
				cache.Write(lba)
				return
			}
			if !cache.Read(lba).Hit {
				cache.Insert(lba)
			}
		})
	}
	gl := cache.Global()
	return accesses, cache.Stats(), gl.ECCReconfigs, gl.DensityReconfigs
}

func main() {
	fmt.Println("Flash lifetime to total failure: programmable controller vs BCH-1")
	fmt.Println("(Figure 12 scenario: Financial1, Flash = working set / 2, accelerated wear,")
	fmt.Println(" retention loss + read disturb + scrubber refresh policy enabled)")
	fmt.Println()

	progLife, progStats, ecc, density := lifetime(true)
	baseLife, baseStats, _, _ := lifetime(false)

	fmt.Printf("programmable controller: %8d accesses until total failure\n", progLife)
	fmt.Printf("  controller decisions:  %d ECC strength increases, %d density reductions\n",
		ecc, density)
	fmt.Printf("  scrubber:              %d pages scanned, %d wear migrations\n",
		progStats.ScrubScans, progStats.ScrubMigrations)
	fmt.Printf("  refresh policy:        %d retention scans, %d refresh rewrites, %d disturb resets\n",
		progStats.RetentionScans, progStats.RefreshRewrites, progStats.DisturbResets)
	fmt.Printf("fixed BCH-1 controller:  %8d accesses until total failure\n", baseLife)
	fmt.Printf("  scrubber:              %d pages scanned, %d wear migrations\n",
		baseStats.ScrubScans, baseStats.ScrubMigrations)
	fmt.Printf("  refresh policy:        %d retention scans, %d refresh rewrites, %d disturb resets\n",
		baseStats.RetentionScans, baseStats.RefreshRewrites, baseStats.DisturbResets)
	fmt.Printf("\nlifetime extension: %.1fx (paper reports ~20x on average)\n",
		float64(progLife)/float64(baseLife))
}
