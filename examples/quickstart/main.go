// Quickstart: build a Flash disk cache with the paper's default
// configuration, drive it by hand, and inspect what the programmable
// controller did.
package main

import (
	"fmt"

	"flashdc"
)

func main() {
	// A 64MB Flash secondary disk cache, split 90% read / 10% write,
	// with the programmable ECC/density controller enabled.
	cfg := flashdc.DefaultCacheConfig(64 << 20)
	cfg.Seed = 42
	cache := flashdc.NewCache(cfg)

	// Read path (section 5.1): a miss is served from disk by the
	// caller, which then inserts the page into the read region.
	if out := cache.Read(1000); !out.Hit {
		fmt.Println("read miss for page 1000 -> fetch from disk, insert")
		cache.Insert(1000)
	}
	if out := cache.Read(1000); out.Hit {
		fmt.Printf("read hit for page 1000 in %v (Flash read + ECC decode)\n", out.Latency)
	}

	// Write path: dirty pages go to the write region out-of-place.
	for i := int64(0); i < 100; i++ {
		cache.Write(2000 + i)
	}
	fmt.Printf("wrote 100 pages; cache now holds %d valid pages\n", cache.ValidPages())

	// Re-reading a hot page repeatedly saturates its access counter
	// and promotes it from MLC to a faster SLC page (section 5.2.2).
	for i := 0; i < 100; i++ {
		cache.Read(1000)
	}
	st := cache.Stats()
	fmt.Printf("after 100 re-reads: %d hot-page SLC promotions\n", st.Promotions)
	if out := cache.Read(1000); out.Hit {
		fmt.Printf("promoted page now hits in %v (SLC read)\n", out.Latency)
	}

	g := cache.Global()
	fmt.Printf("totals: %d hits, %d misses, miss rate %.3f\n",
		g.Hits, g.Misses, g.MissRate())
	fmt.Printf("stats: %d fills, %d GC runs, %d evictions\n",
		st.Fills, st.GCRuns, st.Evictions)
}
