// Webserver: the paper's headline scenario (Figure 9) — replace most
// of a web server's DRAM disk cache with NAND Flash and compare power
// and throughput under a SPECWeb99-like workload. Both systems execute
// the same benchmark, so power is averaged over a common wall-clock
// interval (the slower system's completion time).
package main

import (
	"fmt"

	"flashdc"
)

const scale = 1.0 / 16 // shrink capacities and footprint together

type result struct {
	sys     *flashdc.System
	stats   flashdc.SystemStats
	elapsed flashdc.Duration
}

func run(dramBytes, flashBytes int64) result {
	sys := flashdc.NewSystem(flashdc.SystemConfig{
		DRAMBytes:  int64(float64(dramBytes) * scale),
		FlashBytes: int64(float64(flashBytes) * scale),
		Seed:       7,
	})
	g, err := flashdc.NewWorkload("SPECWeb99", scale, 7)
	if err != nil {
		panic(err)
	}
	// Warm thoroughly (the Flash tier fills on PDC misses only), then
	// measure steady state.
	for i := 0; i < 400000; i++ {
		sys.Handle(g.Next())
	}
	sys.ResetStats()
	for i := 0; i < 150000; i++ {
		sys.Handle(g.Next())
	}
	sys.Drain()

	st := sys.Stats()
	elapsed := flashdc.DefaultServer().Elapsed(st.Requests, st.AvgLatency())
	if db := sys.DiskBusy(); db > elapsed {
		elapsed = db
	}
	if fb := sys.FlashBusy(); fb > elapsed {
		elapsed = fb
	}
	return result{sys: sys, stats: st, elapsed: elapsed}
}

func main() {
	fmt.Println("SPECWeb99-like workload, DRAM-only vs DRAM+Flash (Figure 9 scenario)")
	fmt.Printf("capacities at 1/16 of the paper's configuration\n\n")

	base := run(512<<20, 0)
	hybrid := run(128<<20, 2<<30)

	// Iso-work wall clock: the slower system sets the interval.
	wall := base.elapsed
	if hybrid.elapsed > wall {
		wall = hybrid.elapsed
	}

	report := func(label string, r result) float64 {
		pw := r.sys.Power(wall)
		fmt.Printf("%s\n", label)
		fmt.Printf("  PDC hits %d, flash hits %d, disk reads %d, avg latency %v\n",
			r.stats.PDCHits, r.stats.FlashHits, r.stats.DiskReads, r.stats.AvgLatency())
		fmt.Printf("  power over common interval: %v\n", pw)
		fmt.Printf("  completion time for the benchmark: %v\n\n", r.elapsed)
		return pw.Total()
	}
	basePower := report("DDR2 512MB + HDD (baseline)", base)
	hybridPower := report("DDR2 128MB + Flash 2GB + HDD (proposed)", hybrid)

	fmt.Printf("memory+disk power ratio: %.2fx lower with Flash\n", basePower/hybridPower)
	fmt.Printf("speedup on the same work: %.2fx\n",
		base.elapsed.Seconds()/hybrid.elapsed.Seconds())
}
