// OLTP: the Figure 4 scenario — a dbt2-like database workload against
// the Flash disk cache, comparing the paper's split read/write
// organisation with the unified baseline across cache sizes.
package main

import (
	"fmt"

	"flashdc"
)

const scale = 1.0 / 16

func missRate(flashBytes int64, split bool) float64 {
	cfg := flashdc.DefaultCacheConfig(int64(float64(flashBytes) * scale))
	cfg.Split = split
	cfg.Programmable = false // isolate the organisation effect
	cfg.Seed = 9
	cache := flashdc.NewCache(cfg)

	g, err := flashdc.NewWorkload("dbt2", scale, 9)
	if err != nil {
		panic(err)
	}
	const requests = 150000
	var reads, misses int64
	for i := 0; i < requests; i++ {
		r := g.Next()
		r.Expand(func(lba int64) {
			if r.Op == flashdc.OpWrite {
				cache.Write(lba)
				return
			}
			out := cache.Read(lba)
			if i > requests/2 { // measure warm
				reads++
				if !out.Hit {
					misses++
				}
			}
			if !out.Hit {
				cache.Insert(lba)
			}
		})
	}
	return float64(misses) / float64(reads)
}

func main() {
	fmt.Println("dbt2 (OLTP) Flash miss rate: unified vs split read/write cache")
	fmt.Println("(Figure 4 scenario, capacities at 1/16 of the paper's)")
	fmt.Println()
	fmt.Printf("%-10s  %-10s  %-10s  %s\n", "flash", "unified", "split", "improvement")
	for _, mb := range []int64{128, 256, 384, 512, 640} {
		u := missRate(mb<<20, false)
		s := missRate(mb<<20, true)
		fmt.Printf("%-10s  %-10.4f  %-10.4f  %+.2f pp\n",
			fmt.Sprintf("%dMB", mb), u, s, 100*(u-s))
	}
	fmt.Println("\nthe split organisation confines out-of-place writes and their")
	fmt.Println("garbage collection to a 10% region, so the read cache keeps its")
	fmt.Println("capacity — the gap grows with cache size, as in the paper.")
}
