// Integrity: the section 4 controller pipeline on real bytes — store
// 2KB pages with BCH+CRC protection on the simulated NAND device, age
// the device until wear flips actual bits, and watch the real decoder
// recover the data (and report honestly when the code is too weak).
package main

import (
	"bytes"
	"fmt"

	"flashdc/internal/ecc"
	"flashdc/internal/nand"
	"flashdc/internal/sim"
	"flashdc/internal/wear"
)

func main() {
	dev := nand.New(nand.Config{
		Blocks:           4,
		InitialMode:      wear.MLC,
		Seed:             42,
		WearAcceleration: 3000, // compress years of wear into the demo
	})
	codec := ecc.NewCodec()
	rng := sim.NewRNG(7)
	payload := make([]byte, ecc.PageSize)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}

	fmt.Println("aging block 0 with erase cycles...")
	for cycles := 0; dev.BitErrors(nand.Addr{}) < 4; cycles++ {
		if _, err := dev.Erase(0); err != nil {
			panic(err)
		}
	}
	errs := dev.BitErrors(nand.Addr{})
	fmt.Printf("block 0 now develops %d bit errors per page read\n\n", errs)

	for _, t := range []ecc.Strength{ecc.Strength(errs - 2), ecc.Strength(errs + 2)} {
		if t < 1 {
			t = 1
		}
		spare := codec.Encode(t, payload)
		if _, err := dev.ProgramPage(nand.Addr{}, 1, payload, spare); err != nil {
			panic(err)
		}
		buf, res, err := dev.ReadPage(nand.Addr{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("ECC strength t=%d against %d worn cells:\n", t, res.BitErrors)
		corrected, decErr := codec.Decode(t, buf.Data, buf.Spare)
		switch {
		case decErr != nil:
			fmt.Printf("  decoder: %v (the programmable controller would now\n", decErr)
			fmt.Println("  stage a stronger code or an MLC->SLC switch, section 5.2)")
		case bytes.Equal(buf.Data, payload):
			fmt.Printf("  recovered bit-exact after correcting %d errors\n", corrected)
		default:
			fmt.Println("  SILENT CORRUPTION — must never happen")
		}
		fmt.Println()
		if _, err := dev.Erase(0); err != nil {
			panic(err)
		}
	}
}
