// Integrity: data survives the things that go wrong. Part 1 shows the
// section 4 controller pipeline on real bytes — store 2KB pages with
// BCH+CRC protection on the simulated NAND device, age the device
// until wear flips actual bits, and watch the real decoder recover the
// data (and report honestly when the code is too weak). Part 2 runs a
// full fault-injection campaign against the cache: transient read
// flips, program/erase failures and grown bad blocks hammer the
// device, while the controller answers with read retries, remapping,
// block retirement and background scrubbing — and an end-of-run audit
// proves no cached page ever served wrong data.
package main

import (
	"bytes"
	"fmt"

	"flashdc/internal/core"
	"flashdc/internal/ecc"
	"flashdc/internal/fault"
	"flashdc/internal/nand"
	"flashdc/internal/sim"
	"flashdc/internal/wear"
)

func main() {
	codecDemo()
	campaignDemo()
}

// codecDemo: one page, real wear, real BCH decode.
func codecDemo() {
	dev := nand.New(nand.Config{
		Blocks:           4,
		InitialMode:      wear.MLC,
		Seed:             42,
		WearAcceleration: 3000, // compress years of wear into the demo
	})
	codec := ecc.NewCodec()
	rng := sim.NewRNG(7)
	payload := make([]byte, ecc.PageSize)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}

	fmt.Println("== Part 1: the ECC pipeline on worn cells ==")
	fmt.Println("aging block 0 with erase cycles...")
	for cycles := 0; dev.BitErrors(nand.Addr{}) < 4; cycles++ {
		if _, err := dev.Erase(0); err != nil {
			panic(err)
		}
	}
	errs := dev.BitErrors(nand.Addr{})
	fmt.Printf("block 0 now develops %d bit errors per page read\n\n", errs)

	for _, t := range []ecc.Strength{ecc.Strength(errs - 2), ecc.Strength(errs + 2)} {
		if t < 1 {
			t = 1
		}
		spare := codec.Encode(t, payload)
		if _, err := dev.ProgramPage(nand.Addr{}, 1, payload, spare); err != nil {
			panic(err)
		}
		buf, res, err := dev.ReadPage(nand.Addr{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("ECC strength t=%d against %d worn cells:\n", t, res.BitErrors)
		corrected, decErr := codec.Decode(t, buf.Data, buf.Spare)
		switch {
		case decErr != nil:
			fmt.Printf("  decoder: %v (the programmable controller would now\n", decErr)
			fmt.Println("  stage a stronger code or an MLC->SLC switch, section 5.2)")
		case bytes.Equal(buf.Data, payload):
			fmt.Printf("  recovered bit-exact after correcting %d errors\n", corrected)
		default:
			fmt.Println("  SILENT CORRUPTION — must never happen")
		}
		fmt.Println()
		if _, err := dev.Erase(0); err != nil {
			panic(err)
		}
	}
}

// campaignDemo: inject -> retry -> remap -> retire -> scrub, audited.
func campaignDemo() {
	fmt.Println("== Part 2: a fault-injection campaign against the cache ==")
	cfg := core.DefaultConfig(8 << 20) // 8MB = 32 MLC blocks
	cfg.Seed = 42
	cfg.ScrubEvery = 256       // patrol the page population in the background
	cfg.WearAcceleration = 500 // age the cells so the scrubber has work
	cfg.Faults = &fault.Plan{
		Seed:            1234,
		ReadFlipRate:    5e-3, // transient flips: read-retry territory
		ReadFlipMax:     3,
		ProgramFailRate: 5e-4, // burned slots: remap territory
		EraseFailRate:   2e-3, // stuck blocks: retirement territory
		GrownBadRate:    0.1,  // some failures are permanent
	}
	c := core.New(cfg)

	fmt.Printf("running 120k operations at read=%g program=%g erase=%g grown=%g ...\n",
		cfg.Faults.ReadFlipRate, cfg.Faults.ProgramFailRate,
		cfg.Faults.EraseFailRate, cfg.Faults.GrownBadRate)
	rng := sim.NewRNG(99)
	served, lost := 0, 0
	for i := 0; i < 120000 && !c.Dead(); i++ {
		lba := int64(rng.Intn(3000))
		if rng.Bool(0.3) {
			c.Write(lba)
		} else if c.Read(lba).Hit {
			served++
		} else {
			c.Insert(lba)
		}
	}
	st := c.Stats()
	fs := c.FaultStats()
	lost = int(st.Uncorrectable)

	fmt.Println()
	fmt.Println("what the campaign threw at the device:")
	fmt.Printf("  %6d transient bit flips across %d reads\n", fs.ReadFlips, fs.ReadInjections)
	fmt.Printf("  %6d program failures, %d erase failures\n", fs.ProgramFails, fs.EraseFails)
	fmt.Printf("  %6d failures escalated to permanently bad blocks\n", fs.GrownBad)
	fmt.Println("how the controller answered:")
	fmt.Printf("  %6d read retries, %d recovered the data (%d pages lost, re-fetched from disk)\n",
		st.ReadRetries, st.RetryRecoveries, lost)
	fmt.Printf("  %6d program failures remapped to healthy pages\n", st.Remaps)
	fmt.Printf("  %6d erase failures absorbed, %d blocks retired\n",
		st.EraseFailures, st.RetiredBlocks)
	fmt.Printf("  %6d pages scrub-scanned, %d migrated off worn cells\n",
		st.ScrubScans, st.ScrubMigrations)
	fmt.Printf("cache after the storm: %d hits served, %d pages cached, dead=%v\n",
		served, c.ValidPages(), c.Dead())

	fmt.Println()
	if err := c.CheckIntegrity(); err != nil {
		fmt.Println("integrity audit: FAILED:", err)
		return
	}
	fmt.Printf("integrity audit: OK — all %d cached pages verified against their disk addresses,\n", c.ValidPages())
	fmt.Println("no mapping points at a retired block, every table agrees. Faults cost")
	fmt.Println("performance and capacity, never correctness.")
}
